package trace

import (
	"testing"

	"spechint/internal/analysis"
	"spechint/internal/asm"
	"spechint/internal/spechint"
)

// FuzzTraceParse is the parser's native fuzz wall: Parse never panics, and
// anything it accepts must compile — through both code-generator variants,
// the assembler, and the SpecHint transform — into a program with zero
// speclint findings. The seed corpus below is extended by the committed
// files under testdata/fuzz/FuzzTraceParse.
func FuzzTraceParse(f *testing.F) {
	f.Add("open a\nread 0 8192\nclose\n")
	f.Add("# comment\nopen data/x.bin\nthink 100\nread 4096 100\nread 0 1\nclose\nopen y\nclose\n")
	f.Add("open a\nread 0 1048576\nthink 1099511627776\nclose\n")
	f.Add("read 0 10\n")
	f.Add("open a\nopen b\n")
	f.Add("close\n")
	f.Add("think -1\n")
	f.Add("open \x00\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics and false accepts are not
		}
		// Accepted: the trace must compile cleanly in both variants.
		for _, manual := range []bool{false, true} {
			prog, err := asm.Assemble(Source(tr, manual))
			if err != nil {
				t.Fatalf("accepted trace failed to assemble (manual=%v): %v\ntrace:\n%s", manual, err, Format(tr))
			}
			if manual {
				continue
			}
			opt := spechint.DefaultOptions()
			transformed, _, err := spechint.Transform(prog, opt)
			if err != nil {
				t.Fatalf("accepted trace failed to transform: %v\ntrace:\n%s", err, Format(tr))
			}
			if findings := analysis.Lint(transformed, opt); len(findings) != 0 {
				t.Fatalf("speclint findings on accepted trace: %v\ntrace:\n%s", findings, Format(tr))
			}
		}
		// And the canonical form must be stable.
		tr2, err := Parse(Format(tr))
		if err != nil {
			t.Fatalf("canonical text rejected: %v\n%s", err, Format(tr))
		}
		if Format(tr2) != Format(tr) {
			t.Fatalf("Format not idempotent:\n%q\nvs\n%q", Format(tr), Format(tr2))
		}
	})
}
