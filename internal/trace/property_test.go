package trace_test

// The replay property wall: for ANY valid trace, the speculating run of its
// compiled program preserves the original run's observable output — exit
// digest and printed bytes — across random seeds and under every
// recoverable fault plan. This is the chaos-harness contract extended to
// arbitrary captured workloads: speculation and fault containment must be
// invisible no matter what access pattern the trace throws at them.

import (
	"fmt"
	"math/rand"
	"testing"

	"spechint/internal/asm"
	"spechint/internal/core"
	"spechint/internal/fault"
	"spechint/internal/fsim"
	"spechint/internal/spechint"
	"spechint/internal/trace"
	"spechint/internal/workload"
)

// genTrace builds a random but valid trace over a handful of files.
func genTrace(seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	paths := []string{"gen/a.bin", "gen/b.bin", "gen/c.bin"}
	sizes := []int64{64 << 10, 128 << 10, 256 << 10}
	c := &trace.Capture{}
	nReads := 30 + rng.Intn(50)
	for i := 0; i < nReads; i++ {
		p := rng.Intn(len(paths))
		off := rng.Int63n(sizes[p])
		n := 1 + rng.Int63n(16<<10)
		think := int64(0)
		if rng.Intn(3) > 0 {
			think = rng.Int63n(50_000)
		}
		// Reads may run past EOF (short reads) — the replay must cope.
		c.Read(paths[p], off, n, think)
	}
	return c.Trace()
}

// replayRun compiles and runs tr in the given mode over a freshly populated
// file system, optionally under a fault plan.
func replayRun(t *testing.T, tr *trace.Trace, mode core.Mode, plan string) *core.RunStats {
	t.Helper()
	src := trace.Source(tr, mode == core.ModeManual)
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if mode == core.ModeSpeculating {
		if prog, _, err = spechint.Transform(prog, spechint.DefaultOptions()); err != nil {
			t.Fatalf("transform: %v", err)
		}
	}
	fs := fsim.New(8192)
	workload.SetBenchLayout(fs)
	if err := trace.PopulateFS(fs, tr); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(mode)
	if plan != "" {
		if cfg.Faults, err = fault.Parse(plan); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := core.New(cfg, prog, fs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run()
	if err != nil {
		t.Fatalf("mode %v plan %q: %v", mode, plan, err)
	}
	if st.Buckets.Total() != int64(st.Elapsed) {
		t.Fatalf("mode %v plan %q: buckets sum %d != elapsed %d", mode, plan, st.Buckets.Total(), st.Elapsed)
	}
	return st
}

// recoverableReplayPlans mirror the chaos harness's no-death schedules:
// every demand read eventually succeeds, so output must be bit-identical.
var recoverableReplayPlans = []string{
	"seed=11,rate=0.02",
	"seed=23,rate=0.05,burst=3,spike=0.05x6",
}

// TestReplaySpeculationPreservesOutput is the core property: speculating
// replay == original replay, for every seed and recoverable fault plan.
func TestReplaySpeculationPreservesOutput(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			tr := genTrace(seed)
			base := replayRun(t, tr, core.ModeNoHint, "")
			if base.ReadCalls == 0 {
				t.Fatal("generated trace issued no reads; property is vacuous")
			}
			for _, mode := range []core.Mode{core.ModeSpeculating, core.ModeManual} {
				st := replayRun(t, tr, mode, "")
				if st.ExitCode != base.ExitCode || st.Output != base.Output {
					t.Errorf("%v diverged from original: exit %d vs %d", mode, st.ExitCode, base.ExitCode)
				}
			}
			for _, plan := range recoverableReplayPlans {
				for _, mode := range []core.Mode{core.ModeNoHint, core.ModeSpeculating} {
					st := replayRun(t, tr, mode, plan)
					if st.ExitCode != base.ExitCode || st.Output != base.Output {
						t.Errorf("%v under %q diverged: exit %d vs %d", mode, plan, st.ExitCode, base.ExitCode)
					}
					if st.ReadErrors != 0 {
						t.Errorf("%v under %q: %d reads surfaced EIO on a recoverable plan", mode, plan, st.ReadErrors)
					}
				}
			}
		})
	}
}

// TestReplaySpeculationActuallyHints guards against a vacuous property: on
// a dense predictable trace the speculating run must hint most reads.
func TestReplaySpeculationActuallyHints(t *testing.T) {
	c := &trace.Capture{}
	// A readahead-hostile but perfectly predictable stride.
	for i := int64(0); i < 64; i++ {
		c.Read("gen/stride.bin", (i*37)%64*8192, 8192, 20_000)
	}
	tr := c.Trace()
	base := replayRun(t, tr, core.ModeNoHint, "")
	st := replayRun(t, tr, core.ModeSpeculating, "")
	if st.HintedReads < st.ReadCalls/2 {
		t.Errorf("speculation hinted only %d of %d reads", st.HintedReads, st.ReadCalls)
	}
	if st.Elapsed >= base.Elapsed {
		t.Errorf("speculating replay (%d cycles) not faster than original (%d)", st.Elapsed, base.Elapsed)
	}
}

// TestReplayDeterminism: the same trace reproduces cycle-for-cycle.
func TestReplayDeterminism(t *testing.T) {
	tr := genTrace(99)
	for _, mode := range []core.Mode{core.ModeNoHint, core.ModeSpeculating} {
		a := replayRun(t, tr, mode, "")
		b := replayRun(t, tr, mode, "")
		if a.Elapsed != b.Elapsed || a.ExitCode != b.ExitCode {
			t.Errorf("%v: same trace diverged: %d/%d vs %d/%d cycles",
				mode, a.Elapsed, a.ExitCode, b.Elapsed, b.ExitCode)
		}
	}
}
