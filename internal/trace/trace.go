// Package trace is the trace-replay frontend: it ingests strace/blktrace-
// shaped access traces from a simple line format, validates them, and
// compiles them into VM programs (see compile.go) so that *any* captured
// read stream runs as a first-class benchmark application in every mode —
// original, speculating, manual and static — with zero special cases in the
// runtime, the transform, or the analyses.
//
// The line format, one record per line (blank lines and lines starting with
// '#' are ignored):
//
//	open <path>          begin reading the named file
//	read <off> <len>     read len bytes at absolute offset off
//	think <cycles>       compute for that many CPU cycles
//	close                finish with the current file
//
// Offsets, lengths and cycles are decimal. Exactly one file is open at a
// time: interleaved multi-file access is expressed by closing and reopening
// (opens cost no I/O in the simulated file system — the disk access sequence
// is determined entirely by the reads — so this normalization loses
// nothing, and Capture applies it automatically when recording).
//
// Package trace deliberately imports only the file-system model: the core
// runtime imports it for capture (Config.Capture), so it must sit below
// core in the dependency order.
package trace

import (
	"fmt"
	"strconv"
	"strings"

	"spechint/internal/fsim"
)

// Validation limits. They bound the compiled program's data segment (each
// record costs 24 bytes plus its path string) so every accepted trace fits
// comfortably in the VM's default memory.
const (
	MaxRecords = 1 << 16 // records per trace
	MaxReadLen = 1 << 20 // bytes per read
	MaxOffset  = 1 << 40 // byte offset into one file
	MaxThink   = 1 << 40 // cycles per think record
	MaxPathLen = 255     // bytes per path
)

// Kind discriminates trace records.
type Kind int

const (
	KindOpen Kind = iota
	KindRead
	KindThink
	KindClose
)

func (k Kind) String() string {
	switch k {
	case KindOpen:
		return "open"
	case KindRead:
		return "read"
	case KindThink:
		return "think"
	case KindClose:
		return "close"
	}
	return "unknown"
}

// Rec is one trace record. Path is set for opens; Off and Len for reads;
// Cycles for thinks; a close carries nothing.
type Rec struct {
	Kind   Kind
	Path   string
	Off    int64
	Len    int64
	Cycles int64
}

// Trace is a validated record sequence: opens and closes strictly alternate,
// every read falls inside an open/close pair, and every field is within the
// package limits.
type Trace struct {
	Recs []Rec
}

// Reads returns just the read records, in order — the part of a trace that
// determines its disk access sequence (round-trip tests compare these).
func (t *Trace) Reads() []Rec {
	var rs []Rec
	cur := ""
	for _, r := range t.Recs {
		switch r.Kind {
		case KindOpen:
			cur = r.Path
		case KindRead:
			rr := r
			rr.Path = cur
			rs = append(rs, rr)
		}
	}
	return rs
}

// ParseError is a malformed-trace diagnostic. Line is 1-based and always
// set: tools that surface the error (specrun -trace-file) can point at the
// offending record.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("trace: line %d: %s", e.Line, e.Msg) }

func perr(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads the line format. Every error is a *ParseError carrying the
// 1-based line number of the offending record.
func Parse(src string) (*Trace, error) {
	tr := &Trace{}
	openAt := 0 // line of the currently-open file's open record (0 = none)
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		s := strings.TrimSpace(raw)
		if s == "" || s[0] == '#' {
			continue
		}
		f := strings.Fields(s)
		if len(tr.Recs) >= MaxRecords {
			return nil, perr(line, "too many records (limit %d)", MaxRecords)
		}
		switch f[0] {
		case "open":
			if len(f) != 2 {
				return nil, perr(line, "open wants 1 operand (a path), got %d", len(f)-1)
			}
			if openAt != 0 {
				return nil, perr(line, "open with a file already open (line %d); close it first", openAt)
			}
			if err := checkPath(f[1]); err != nil {
				return nil, perr(line, "%v", err)
			}
			tr.Recs = append(tr.Recs, Rec{Kind: KindOpen, Path: f[1]})
			openAt = line
		case "read":
			if len(f) != 3 {
				return nil, perr(line, "read wants 2 operands (offset, length), got %d", len(f)-1)
			}
			if openAt == 0 {
				return nil, perr(line, "read with no file open")
			}
			off, err := parseNum(f[1], 0, MaxOffset)
			if err != nil {
				return nil, perr(line, "read offset %v", err)
			}
			n, err := parseNum(f[2], 1, MaxReadLen)
			if err != nil {
				return nil, perr(line, "read length %v", err)
			}
			tr.Recs = append(tr.Recs, Rec{Kind: KindRead, Off: off, Len: n})
		case "think":
			if len(f) != 2 {
				return nil, perr(line, "think wants 1 operand (cycles), got %d", len(f)-1)
			}
			c, err := parseNum(f[1], 0, MaxThink)
			if err != nil {
				return nil, perr(line, "think cycles %v", err)
			}
			tr.Recs = append(tr.Recs, Rec{Kind: KindThink, Cycles: c})
		case "close":
			if len(f) != 1 {
				return nil, perr(line, "close takes no operands, got %d", len(f)-1)
			}
			if openAt == 0 {
				return nil, perr(line, "close with no file open")
			}
			tr.Recs = append(tr.Recs, Rec{Kind: KindClose})
			openAt = 0
		default:
			return nil, perr(line, "unknown record %q (want open, read, think or close)", f[0])
		}
	}
	if openAt != 0 {
		return nil, perr(openAt, "open was never closed")
	}
	return tr, nil
}

// parseNum parses a decimal int64 within [min, max].
func parseNum(s string, min, max int64) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a decimal number", s)
	}
	if v < min || v > max {
		return 0, fmt.Errorf("%d out of range [%d, %d]", v, min, max)
	}
	return v, nil
}

// checkPath validates a file path: nonempty, bounded, printable ASCII with
// no whitespace (the line format is whitespace-delimited).
func checkPath(p string) error {
	if p == "" {
		return fmt.Errorf("empty path")
	}
	if len(p) > MaxPathLen {
		return fmt.Errorf("path longer than %d bytes", MaxPathLen)
	}
	for i := 0; i < len(p); i++ {
		if p[i] <= ' ' || p[i] > '~' {
			return fmt.Errorf("path byte %d is not printable ASCII", i)
		}
	}
	return nil
}

// Format renders a trace back into the line format. Format∘Parse is the
// identity on canonical text, and Parse∘Format is the identity on every
// valid Trace — the capture path writes traces with it.
func Format(t *Trace) string {
	var b strings.Builder
	for _, r := range t.Recs {
		switch r.Kind {
		case KindOpen:
			fmt.Fprintf(&b, "open %s\n", r.Path)
		case KindRead:
			fmt.Fprintf(&b, "read %d %d\n", r.Off, r.Len)
		case KindThink:
			fmt.Fprintf(&b, "think %d\n", r.Cycles)
		case KindClose:
			b.WriteString("close\n")
		}
	}
	return b.String()
}

// Capture records a read stream as a replayable trace. The core runtime
// calls Read once per application read call (Config.Capture); workload
// generators use it directly as a trace builder. Opens and closes are
// derived from the read stream — a path switch closes the previous file and
// opens the next — which is exact because simulated opens cost no disk I/O:
// the access sequence a trace reproduces is entirely determined by its
// reads. Replaying a captured trace and capturing *that* therefore yields
// the identical read sequence, which is what the round-trip tests pin.
type Capture struct {
	recs []Rec
	cur  string
}

// Read records one read call: think cycles of compute since the previous
// record, then the read of [off, off+n) in path. n is the *requested*
// length, exactly as the application issued it (short reads and EOF probes
// replay as the same request).
func (c *Capture) Read(path string, off, n, think int64) {
	if think > 0 {
		c.recs = append(c.recs, Rec{Kind: KindThink, Cycles: think})
	}
	if path != c.cur {
		if c.cur != "" {
			c.recs = append(c.recs, Rec{Kind: KindClose})
		}
		c.recs = append(c.recs, Rec{Kind: KindOpen, Path: path})
		c.cur = path
	}
	c.recs = append(c.recs, Rec{Kind: KindRead, Off: off, Len: n})
}

// Think records standalone compute (workload builders use it for trailing
// work; mid-stream thinks normally ride in with Read).
func (c *Capture) Think(cycles int64) {
	if cycles > 0 {
		c.recs = append(c.recs, Rec{Kind: KindThink, Cycles: cycles})
	}
}

// Len reports how many records have been captured so far.
func (c *Capture) Len() int { return len(c.recs) }

// Trace finalizes the capture into a well-formed trace (closing the last
// open file). The capture remains usable; Trace can be called again after
// further reads.
func (c *Capture) Trace() *Trace {
	recs := append([]Rec(nil), c.recs...)
	if c.cur != "" {
		recs = append(recs, Rec{Kind: KindClose})
	}
	return &Trace{Recs: recs}
}

// PopulateFS creates any file the trace touches that fs does not already
// have, sized to cover the trace's furthest read and filled with sparse
// deterministic markers (a path-and-offset hash every 512 bytes), so that
// replayed checksums are reproducible. Files that already exist — a host
// directory loaded under the same paths, or a benchmark workload — are left
// alone.
func PopulateFS(fs *fsim.FS, t *Trace) error {
	need := map[string]int64{}
	order := []string{}
	cur := ""
	for _, r := range t.Recs {
		switch r.Kind {
		case KindOpen:
			cur = r.Path
			if _, seen := need[cur]; !seen {
				need[cur] = 0
				order = append(order, cur)
			}
		case KindRead:
			if end := r.Off + r.Len; cur != "" && end > need[cur] {
				need[cur] = end
			}
		}
	}
	for _, path := range order {
		if _, ok := fs.Lookup(path); ok {
			continue
		}
		size := need[path]
		data := make([]byte, size)
		h := pathHash(path)
		for off := int64(0); off < size; off += 512 {
			v := h ^ uint64(off)*0x9e3779b97f4a7c15
			for i := 0; i < 8 && off+int64(i) < size; i++ {
				data[off+int64(i)] = byte(v >> (8 * i))
			}
		}
		if _, err := fs.Create(path, data); err != nil {
			return fmt.Errorf("trace: populate %s: %v", path, err)
		}
	}
	return nil
}

// pathHash is FNV-1a, inlined to keep the package dependency-free.
func pathHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
