package trace

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"spechint/internal/fsim"
)

// TestParseErrors is the table-driven error wall: every malformed trace must
// fail with a *ParseError carrying the exact 1-based line number of the
// offending record (specrun -trace-file surfaces these verbatim as exit 1).
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		line    int
		wantSub string
	}{
		{"unknown-record", "open a\nfrobnicate\nclose\n", 2, "unknown record"},
		{"read-no-open", "read 0 10\n", 1, "no file open"},
		{"close-no-open", "# header\n\nclose\n", 3, "no file open"},
		{"double-open", "open a\nopen b\n", 2, "already open"},
		{"open-operands", "open a b\n", 1, "open wants 1 operand"},
		{"open-missing-path", "open\n", 1, "open wants 1 operand"},
		{"read-operands", "open a\nread 5\n", 2, "read wants 2 operands"},
		{"read-bad-offset", "open a\nread x 10\n", 2, "not a decimal number"},
		{"read-negative-offset", "open a\nread -1 10\n", 2, "out of range"},
		{"read-zero-length", "open a\nread 0 0\n", 2, "out of range"},
		{"read-huge-length", fmt.Sprintf("open a\nread 0 %d\n", MaxReadLen+1), 2, "out of range"},
		{"think-operands", "think\n", 1, "think wants 1 operand"},
		{"think-negative", "think -5\n", 1, "out of range"},
		{"think-bad-number", "think 1e9\n", 1, "not a decimal number"},
		{"close-operands", "open a\nclose now\n", 2, "close takes no operands"},
		{"unclosed-open", "think 3\nopen a\nread 0 8\n", 2, "never closed"},
		{"empty-path-chars", "open \x01bad\n", 1, "not printable ASCII"},
		{"long-path", "open " + strings.Repeat("p", MaxPathLen+1) + "\n", 1, "longer than"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse accepted malformed trace:\n%s", tc.src)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, want *ParseError: %v", err, err)
			}
			if pe.Line != tc.line {
				t.Errorf("error line = %d, want %d (%v)", pe.Line, tc.line, err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err.Error(), tc.wantSub)
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("line %d", tc.line)) {
				t.Errorf("error text %q does not carry its line number", err.Error())
			}
		})
	}
}

// TestParseFormatRoundTrip: Parse∘Format is the identity on valid traces,
// and Format∘Parse is the identity on canonical text (comments and blank
// lines erased).
func TestParseFormatRoundTrip(t *testing.T) {
	src := "# captured trace\n\nopen data/a.bin\nread 0 8192\nthink 500\nread 8192 4096\nclose\nopen data/b.bin\nread 100 1\nclose\nthink 9\n"
	tr, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Recs) != 9 {
		t.Fatalf("parsed %d records, want 9", len(tr.Recs))
	}
	text := Format(tr)
	tr2, err := Parse(text)
	if err != nil {
		t.Fatalf("canonical text failed to reparse: %v\n%s", err, text)
	}
	if Format(tr2) != text {
		t.Errorf("Format∘Parse is not idempotent:\n%s\nvs\n%s", text, Format(tr2))
	}
	if len(tr2.Recs) != len(tr.Recs) {
		t.Errorf("round trip changed record count: %d vs %d", len(tr2.Recs), len(tr.Recs))
	}
	for i := range tr.Recs {
		if tr.Recs[i] != tr2.Recs[i] {
			t.Errorf("record %d changed: %+v vs %+v", i, tr.Recs[i], tr2.Recs[i])
		}
	}
}

// TestParseEmpty: a trace of comments and blank lines is valid and empty.
func TestParseEmpty(t *testing.T) {
	tr, err := Parse("# nothing\n\n   \n")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Recs) != 0 {
		t.Fatalf("empty input parsed to %d records", len(tr.Recs))
	}
	if Format(tr) != "" {
		t.Errorf("Format of empty trace = %q", Format(tr))
	}
}

// TestCaptureNormalizes: interleaved reads across files become close/open
// pairs, think deltas ride in front of their reads, and the finalized trace
// always reparses.
func TestCaptureNormalizes(t *testing.T) {
	c := &Capture{}
	c.Read("a", 0, 100, 0)
	c.Read("a", 100, 100, 40)
	c.Read("b", 0, 50, 7)    // switch: close a, open b
	c.Read("a", 200, 100, 0) // switch back
	tr := c.Trace()

	want := "open a\nread 0 100\nthink 40\nread 100 100\nthink 7\nclose\nopen b\nread 0 50\nclose\nopen a\nread 200 100\nclose\n"
	if got := Format(tr); got != want {
		t.Errorf("normalized trace:\n%s\nwant:\n%s", got, want)
	}
	if _, err := Parse(Format(tr)); err != nil {
		t.Errorf("captured trace does not reparse: %v", err)
	}
	reads := tr.Reads()
	if len(reads) != 4 {
		t.Fatalf("Reads() returned %d, want 4", len(reads))
	}
	if reads[2].Path != "b" || reads[3].Path != "a" {
		t.Errorf("Reads() paths wrong: %+v", reads)
	}
	// The capture stays usable after Trace().
	c.Read("b", 50, 50, 0)
	if got := len(c.Trace().Reads()); got != 5 {
		t.Errorf("capture after Trace(): %d reads, want 5", got)
	}
}

// TestPopulateFS sizes files to the furthest read and leaves existing files
// alone.
func TestPopulateFS(t *testing.T) {
	tr, err := Parse("open have\nread 0 10\nclose\nopen miss\nread 100 28\nread 4000 96\nclose\nopen never-read\nclose\n")
	if err != nil {
		t.Fatal(err)
	}
	fs := fsim.New(8192)
	fs.MustCreate("have", make([]byte, 3))
	if err := PopulateFS(fs, tr); err != nil {
		t.Fatal(err)
	}
	if f, _ := fs.Lookup("have"); f.Size() != 3 {
		t.Errorf("existing file resized to %d", f.Size())
	}
	f, ok := fs.Lookup("miss")
	if !ok || f.Size() != 4096 {
		t.Fatalf("missing file not created at size 4096: %v, %v", ok, f)
	}
	if _, ok := fs.Lookup("never-read"); !ok {
		t.Error("opened-but-never-read file not created")
	}
	// Deterministic content: a second population of a fresh FS matches.
	fs2 := fsim.New(8192)
	if err := PopulateFS(fs2, tr); err != nil {
		t.Fatal(err)
	}
	f2, _ := fs2.Lookup("miss")
	if string(f.Data) != string(f2.Data) {
		t.Error("PopulateFS content is not deterministic")
	}
}

// TestParseRecordCap: the record limit surfaces with the right line.
func TestParseRecordCap(t *testing.T) {
	var b strings.Builder
	b.WriteString("open a\n")
	for i := 0; i < MaxRecords; i++ {
		b.WriteString("think 1\n")
	}
	_, err := Parse(b.String())
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("record cap not enforced: %v", err)
	}
	if pe.Line != MaxRecords+1 {
		t.Errorf("cap error at line %d, want %d", pe.Line, MaxRecords+1)
	}
}
