// Package fault is the deterministic fault-injection subsystem: a seeded
// Plan decides, per disk request, whether the request fails, how long it is
// delayed, and whether its disk has died outright. The disk array consults
// the plan at service time (disk.Array.SetInjector), so every fault lands at
// a reproducible virtual cycle — the same seed and plan always produce the
// same schedule of failures.
//
// Four fault classes are modeled, matching what a production array actually
// suffers:
//
//   - transient read errors: each request fails with probability Rate; a
//     triggered fault optionally extends into a burst of Burst consecutive
//     failures on that disk (media defects cluster);
//   - latency spikes: each request's service time is multiplied by
//     SpikeFactor with probability SpikeRate (thermal recalibration, retries
//     inside the drive);
//   - fail-N-then-succeed: the first FailN attempts to read any given
//     physical block fail, after which reads of it succeed (sector remapping
//     after retries) — a guaranteed-recovery pattern the retry machinery can
//     be validated against;
//   - permanent disk death: disk D stops returning data at virtual time T
//     (DieDisk/DieAt); every request on it, queued or future, completes with
//     an error.
//
// The plan is pure policy: it owns no clock and schedules no events. All
// randomness comes from a splitmix64 stream seeded at construction, advanced
// once per decision, so injection is deterministic given the (deterministic)
// order of disk service.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"spechint/internal/sim"
)

// Plan is one seeded fault schedule. The zero value injects nothing; use
// NewPlan or Parse.
type Plan struct {
	Seed int64

	// Rate is the per-request transient read-error probability in [0, 1).
	Rate float64
	// Burst extends a triggered transient fault to this many consecutive
	// failing requests on the same disk (default 1: no clustering).
	Burst int

	// SpikeRate is the per-request probability of a latency spike;
	// SpikeFactor multiplies the service time when one hits (default 4).
	SpikeRate   float64
	SpikeFactor int

	// FailN makes the first FailN read attempts of each physical block fail
	// before reads of it succeed. Zero disables the pattern.
	FailN int

	// DieDisk/DieAt kill one disk permanently at virtual time DieAt.
	// DieDisk < 0 (the default) disables disk death; DieAt must be > 0 when
	// a disk is named, so the zero value of Plan injects nothing.
	DieDisk int
	DieAt   sim.Time

	// DieShard/DieShardAt kill one whole cluster shard at virtual time
	// DieShardAt: queued requests fail, the ring re-routes its keys to
	// survivors. DieShard < 0 disables it; DieShardAt must be > 0 when a
	// shard is named (zero value injects nothing).
	DieShard   int
	DieShardAt sim.Time

	// BrownShard browns shard BrownShard out over [BrownAt, BrownUntil):
	// during the window its effective service rate drops by BrownFactor
	// (the shard stretches each dispatch), so queues grow and admission
	// control has something real to shed against. BrownShard < 0 disables
	// it; the window must be non-empty when a shard is named.
	BrownShard  int
	BrownAt     sim.Time
	BrownUntil  sim.Time
	BrownFactor int

	rng       uint64
	burstLeft map[int]int      // per-disk remaining burst failures
	attempts  map[[2]int64]int // (disk, phys) -> failed attempts so far
	stats     Stats
}

// Stats counts what the plan actually injected.
type Stats struct {
	Requests   int64 // requests the plan ruled on
	Transient  int64 // transient failures injected (including burst tails)
	Spikes     int64 // latency spikes injected
	FailNFails int64 // fail-N-then-succeed failures injected
	DeadHits   int64 // requests that found their disk dead
}

// NewPlan returns a plan with the given seed and defaults applied.
func NewPlan(seed int64) *Plan {
	p := &Plan{Seed: seed, DieDisk: -1, DieShard: -1, BrownShard: -1}
	p.init()
	return p
}

func (p *Plan) init() {
	if p.Burst <= 0 {
		p.Burst = 1
	}
	if p.SpikeFactor <= 0 {
		p.SpikeFactor = 4
	}
	if p.BrownFactor <= 0 {
		p.BrownFactor = 8
	}
	p.rng = uint64(p.Seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	p.burstLeft = make(map[int]int)
	p.attempts = make(map[[2]int64]int)
}

// Validate reports a plan error, if any.
func (p *Plan) Validate() error {
	switch {
	case p.Rate < 0 || p.Rate >= 1:
		return fmt.Errorf("fault: rate %g, want [0, 1)", p.Rate)
	case p.SpikeRate < 0 || p.SpikeRate >= 1:
		return fmt.Errorf("fault: spike rate %g, want [0, 1)", p.SpikeRate)
	case p.Burst < 1:
		return fmt.Errorf("fault: burst %d, want >= 1", p.Burst)
	case p.SpikeFactor < 1:
		return fmt.Errorf("fault: spike factor %d, want >= 1", p.SpikeFactor)
	case p.FailN < 0:
		return fmt.Errorf("fault: failn %d, want >= 0", p.FailN)
	case p.DieDisk >= 0 && p.DieAt <= 0:
		return fmt.Errorf("fault: die time %d, want > 0", p.DieAt)
	case p.DieShard >= 0 && p.DieShardAt <= 0:
		return fmt.Errorf("fault: shard die time %d, want > 0", p.DieShardAt)
	case p.BrownShard >= 0 && (p.BrownAt <= 0 || p.BrownUntil <= p.BrownAt):
		return fmt.Errorf("fault: brownout window [%d, %d), want 0 < from < until", p.BrownAt, p.BrownUntil)
	case p.BrownShard >= 0 && p.BrownFactor < 2:
		return fmt.Errorf("fault: brownout factor %d, want >= 2", p.BrownFactor)
	}
	return nil
}

// ShardDead reports whether cluster shard `shard` has permanently failed as
// of now.
func (p *Plan) ShardDead(shard int, now sim.Time) bool {
	return p.DieShard == shard && p.DieShardAt > 0 && now >= p.DieShardAt
}

// ShardBrownFactor returns the service-stretch factor for shard `shard` at
// time now: 1 outside any brownout window, BrownFactor inside it.
func (p *Plan) ShardBrownFactor(shard int, now sim.Time) int {
	if p.BrownShard == shard && now >= p.BrownAt && now < p.BrownUntil {
		return p.BrownFactor
	}
	return 1
}

// Stats returns a copy of the injection counters.
func (p *Plan) Stats() Stats { return p.stats }

// next advances the splitmix64 stream.
func (p *Plan) next() uint64 {
	p.rng += 0x9e3779b97f4a7c15
	z := p.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance draws one uniform [0,1) variate and compares it against prob.
func (p *Plan) chance(prob float64) bool {
	if prob <= 0 {
		return false
	}
	return float64(p.next()>>11)/float64(1<<53) < prob
}

// DiskDead reports whether disk has permanently failed as of now. It
// implements disk.Injector.
func (p *Plan) DiskDead(disk int, now sim.Time) bool {
	return p.DieDisk == disk && p.DieAt > 0 && now >= p.DieAt
}

// Outcome rules on one request entering service: spikeFactor multiplies the
// media service time (1 = no spike) and fail says the request completes with
// a transient error. It implements disk.Injector; the caller handles dead
// disks via DiskDead before asking. The decision order (spike draw, then
// fault draw) is fixed so the stream stays aligned across runs.
func (p *Plan) Outcome(disk int, phys int64, now sim.Time) (spikeFactor int, fail bool) {
	if p.burstLeft == nil {
		p.init()
	}
	p.stats.Requests++
	spikeFactor = 1
	if p.chance(p.SpikeRate) {
		spikeFactor = p.SpikeFactor
		p.stats.Spikes++
	}
	if p.FailN > 0 {
		key := [2]int64{int64(disk), phys}
		if p.attempts[key] < p.FailN {
			p.attempts[key]++
			p.stats.FailNFails++
			return spikeFactor, true
		}
	}
	if left := p.burstLeft[disk]; left > 0 {
		p.burstLeft[disk] = left - 1
		p.stats.Transient++
		return spikeFactor, true
	}
	if p.chance(p.Rate) {
		p.burstLeft[disk] = p.Burst - 1
		p.stats.Transient++
		return spikeFactor, true
	}
	return spikeFactor, false
}

// NoteDeadHit counts a request that found its disk dead (the array calls it
// so plan stats cover every injected outcome).
func (p *Plan) NoteDeadHit() { p.stats.DeadHits++ }

// String renders the plan in Parse's spec syntax.
func (p *Plan) String() string {
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	add(fmt.Sprintf("seed=%d", p.Seed))
	if p.Rate > 0 {
		add(fmt.Sprintf("rate=%g", p.Rate))
	}
	if p.Burst > 1 {
		add(fmt.Sprintf("burst=%d", p.Burst))
	}
	if p.SpikeRate > 0 {
		add(fmt.Sprintf("spike=%gx%d", p.SpikeRate, p.SpikeFactor))
	}
	if p.FailN > 0 {
		add(fmt.Sprintf("failn=%d", p.FailN))
	}
	if p.DieDisk >= 0 {
		add(fmt.Sprintf("die=%d@%d", p.DieDisk, p.DieAt))
	}
	if p.DieShard >= 0 {
		add(fmt.Sprintf("dieshard=%d@%d", p.DieShard, p.DieShardAt))
	}
	if p.BrownShard >= 0 {
		add(fmt.Sprintf("brown=%d@%d-%dx%d", p.BrownShard, p.BrownAt, p.BrownUntil, p.BrownFactor))
	}
	return strings.Join(parts, ",")
}

// Parse builds a plan from a comma-separated spec, e.g.
//
//	rate=0.01,seed=42
//	rate=0.05,burst=3,spike=0.02x8,failn=2,die=1@2e9,seed=7
//
// Keys: seed (int), rate (probability), burst (int), spike (probability, or
// probability x factor), failn (int), die (disk@cycles; cycles may use
// scientific notation). Unknown keys are errors.
func Parse(spec string) (*Plan, error) {
	p := NewPlan(0)
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fault: bad spec element %q, want key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "rate":
			p.Rate, err = strconv.ParseFloat(v, 64)
		case "burst":
			p.Burst, err = strconv.Atoi(v)
		case "failn":
			p.FailN, err = strconv.Atoi(v)
		case "spike":
			rate, factor, found := strings.Cut(v, "x")
			if p.SpikeRate, err = strconv.ParseFloat(rate, 64); err == nil && found {
				p.SpikeFactor, err = strconv.Atoi(factor)
			}
		case "die":
			dk, at, found := strings.Cut(v, "@")
			if !found {
				return nil, fmt.Errorf("fault: die=%q, want die=disk@cycles", v)
			}
			if p.DieDisk, err = strconv.Atoi(dk); err == nil {
				var f float64
				f, err = strconv.ParseFloat(at, 64)
				p.DieAt = sim.Time(f)
			}
		case "dieshard":
			sh, at, found := strings.Cut(v, "@")
			if !found {
				return nil, fmt.Errorf("fault: dieshard=%q, want dieshard=shard@cycles", v)
			}
			if p.DieShard, err = strconv.Atoi(sh); err == nil {
				var f float64
				f, err = strconv.ParseFloat(at, 64)
				p.DieShardAt = sim.Time(f)
			}
		case "brown":
			// brown=shard@from-untilxfactor; the factor suffix is optional.
			sh, win, found := strings.Cut(v, "@")
			if !found {
				return nil, fmt.Errorf("fault: brown=%q, want brown=shard@from-until[xfactor]", v)
			}
			if p.BrownShard, err = strconv.Atoi(sh); err != nil {
				return nil, fmt.Errorf("fault: bad brown=%q: %v", v, err)
			}
			if rng, factor, hasF := strings.Cut(win, "x"); true {
				from, until, ok := strings.Cut(rng, "-")
				if !ok {
					return nil, fmt.Errorf("fault: brown=%q, want a from-until window", v)
				}
				var f float64
				if f, err = strconv.ParseFloat(from, 64); err == nil {
					p.BrownAt = sim.Time(f)
					if f, err = strconv.ParseFloat(until, 64); err == nil {
						p.BrownUntil = sim.Time(f)
					}
				}
				if err == nil && hasF {
					p.BrownFactor, err = strconv.Atoi(factor)
				}
			}
		default:
			return nil, fmt.Errorf("fault: unknown key %q (have %s)", k, knownKeys)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: bad %s=%q: %v", k, v, err)
		}
	}
	// Validate before init: an explicit burst=0 or spike factor 0 is an
	// error, not something the defaulting should paper over.
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.init() // re-seed with the parsed seed
	return p, nil
}

const knownKeys = "seed, rate, burst, spike, failn, die, dieshard, brown"

// Sweep returns n plans derived from a base spec with distinct seeds, for
// chaos sweeps. Seeds are base.Seed, base.Seed+step, ...
func Sweep(base *Plan, n int, step int64) []*Plan {
	plans := make([]*Plan, 0, n)
	for i := 0; i < n; i++ {
		c := *base
		c.Seed = base.Seed + int64(i)*step
		c.init()
		plans = append(plans, &c)
	}
	return plans
}

// Keys returns the sorted spec keys (for CLI help).
func Keys() []string {
	ks := strings.Split(knownKeys, ", ")
	sort.Strings(ks)
	return ks
}
