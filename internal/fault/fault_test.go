package fault

import (
	"spechint/internal/sim"

	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"seed=42,rate=0.01",
		"seed=7,rate=0.05,burst=3,spike=0.02x8,failn=2,die=1@2000000000",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"rate=1.5",    // out of range
		"bogus=1",     // unknown key
		"rate",        // no value
		"die=3",       // missing @cycles
		"spike=0.5x0", // factor < 1
		"burst=0",     // < 1
		"failn=-1",    // negative
		"rate=abc",    // unparsable
		"die=1@-5",    // negative time
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseScientificDieTime(t *testing.T) {
	p, err := Parse("die=2@1.5e9,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	if p.DieDisk != 2 || int64(p.DieAt) != 1_500_000_000 {
		t.Fatalf("die parsed as disk %d at %d", p.DieDisk, p.DieAt)
	}
}

func TestOutcomeDeterminism(t *testing.T) {
	run := func() (spikes, fails int) {
		p := NewPlan(99)
		p.Rate = 0.1
		p.SpikeRate = 0.05
		p.init()
		for i := 0; i < 2000; i++ {
			sp, f := p.Outcome(i%4, int64(i), 0)
			if sp > 1 {
				spikes++
			}
			if f {
				fails++
			}
		}
		return
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 || f1 != f2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", s1, f1, s2, f2)
	}
	if f1 == 0 || s1 == 0 {
		t.Fatalf("rate 0.1/spike 0.05 over 2000 draws injected nothing (fails=%d spikes=%d)", f1, s1)
	}
	// And a different seed must differ somewhere (overwhelmingly likely).
	p := NewPlan(100)
	p.Rate = 0.1
	p.SpikeRate = 0.05
	p.init()
	diff := false
	q := NewPlan(99)
	q.Rate = 0.1
	q.SpikeRate = 0.05
	q.init()
	for i := 0; i < 2000; i++ {
		s3, f3 := p.Outcome(i%4, int64(i), 0)
		s4, f4 := q.Outcome(i%4, int64(i), 0)
		if s3 != s4 || f3 != f4 {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seeds 99 and 100 produced identical 2000-draw streams")
	}
}

func TestBurstClusters(t *testing.T) {
	p := NewPlan(1)
	p.Rate = 0.02
	p.Burst = 4
	p.init()
	// After any triggered failure, the next Burst-1 requests on that disk
	// must also fail.
	for i := 0; i < 5000; i++ {
		_, fail := p.Outcome(0, int64(i), 0)
		if fail {
			for j := 0; j < 3; j++ {
				if _, f := p.Outcome(0, int64(i+1+j), 0); !f {
					t.Fatalf("burst broke after %d follow-ups", j)
				}
			}
			return
		}
	}
	t.Fatal("rate 0.02 over 5000 draws never fired")
}

func TestFailNThenSucceed(t *testing.T) {
	p := NewPlan(3)
	p.FailN = 2
	p.init()
	for attempt := 0; attempt < 5; attempt++ {
		_, fail := p.Outcome(1, 77, 0)
		if want := attempt < 2; fail != want {
			t.Fatalf("attempt %d: fail = %v, want %v", attempt, fail, want)
		}
	}
	// A different block has its own counter.
	if _, fail := p.Outcome(1, 78, 0); !fail {
		t.Fatal("fresh block skipped its fail-N phase")
	}
}

func TestDiskDeath(t *testing.T) {
	p := NewPlan(5)
	p.DieDisk = 2
	p.DieAt = 1000
	if p.DiskDead(2, 999) {
		t.Fatal("dead before DieAt")
	}
	if !p.DiskDead(2, 1000) {
		t.Fatal("alive at DieAt")
	}
	if p.DiskDead(1, 5000) {
		t.Fatal("wrong disk died")
	}
	p.NoteDeadHit()
	if p.Stats().DeadHits != 1 {
		t.Fatal("NoteDeadHit not counted")
	}
}

func TestSweepIndependentState(t *testing.T) {
	base := NewPlan(10)
	base.Rate = 0.5
	base.Burst = 3
	base.init()
	plans := Sweep(base, 3, 1000)
	if len(plans) != 3 {
		t.Fatalf("Sweep returned %d plans", len(plans))
	}
	seeds := map[int64]bool{}
	for _, p := range plans {
		seeds[p.Seed] = true
	}
	if len(seeds) != 3 {
		t.Fatalf("Sweep seeds not distinct: %v", seeds)
	}
	// Mutating one plan's burst state must not leak into a sibling.
	plans[0].Outcome(0, 1, 0)
	if plans[1].Stats().Requests != 0 {
		t.Fatal("sweep plans share stats state")
	}
}

func TestZeroValuePlanInjectsNothing(t *testing.T) {
	var p Plan
	for i := 0; i < 100; i++ {
		sp, fail := p.Outcome(0, int64(i), 0)
		if sp != 1 || fail {
			t.Fatalf("zero plan injected spike=%d fail=%v", sp, fail)
		}
	}
	if p.DiskDead(0, 1<<40) {
		t.Fatal("zero plan killed a disk")
	}
}

// TestShardFaults covers the cluster-level fault classes: whole-shard death
// and brownout windows, including spec round-trips and the zero-value guard.
func TestShardFaults(t *testing.T) {
	p, err := Parse("seed=3,dieshard=1@2000000000,brown=0@1000000-5000000x16")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "seed=3,dieshard=1@2000000000,brown=0@1000000-5000000x16" {
		t.Errorf("round trip = %q", got)
	}
	if p.ShardDead(1, 1_999_999_999) {
		t.Error("shard 1 dead before its death time")
	}
	if !p.ShardDead(1, 2_000_000_000) {
		t.Error("shard 1 alive at its death time")
	}
	if p.ShardDead(0, 3_000_000_000) {
		t.Error("unnamed shard 0 reported dead")
	}
	for now, want := range map[int64]int{
		999_999: 1, 1_000_000: 16, 4_999_999: 16, 5_000_000: 1,
	} {
		if got := p.ShardBrownFactor(0, sim.Time(now)); got != want {
			t.Errorf("brown factor at %d = %d, want %d", now, got, want)
		}
	}
	if p.ShardBrownFactor(1, 2_000_000) != 1 {
		t.Error("unnamed shard 1 browned out")
	}

	// Scientific notation, default factor.
	q, err := Parse("dieshard=0@1.5e9,brown=1@1e6-2e6")
	if err != nil {
		t.Fatal(err)
	}
	if q.DieShard != 0 || int64(q.DieShardAt) != 1_500_000_000 || q.BrownFactor != 8 {
		t.Errorf("parsed %+v, want shard 0 @1.5e9, default brown factor 8", q)
	}

	for _, bad := range []string{
		"dieshard=1",           // missing @cycles
		"dieshard=1@0",         // zero time
		"brown=1@5",            // missing window end
		"brown=1@5000-400",     // empty window
		"brown=1@1000-2000x1",  // factor < 2
		"brown=1@1000-2000xzz", // unparsable factor
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}

	var zero Plan
	if zero.ShardDead(0, 1e9) || zero.ShardBrownFactor(0, 1e9) != 1 {
		t.Error("zero-value plan injects shard faults")
	}
}
