package fsim

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestCreateAndLookup(t *testing.T) {
	fs := New(8192)
	data := []byte("hello world")
	f, err := fs.Create("a.txt", data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", f.Size(), len(data))
	}
	got, ok := fs.Lookup("a.txt")
	if !ok || got != f {
		t.Fatal("Lookup failed to find created file")
	}
	if _, ok := fs.Lookup("missing"); ok {
		t.Fatal("Lookup found missing file")
	}
	if !bytes.Equal(got.Data, data) {
		t.Fatal("content mismatch")
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	fs := New(8192)
	fs.MustCreate("x", nil)
	if _, err := fs.Create("x", nil); err == nil {
		t.Fatal("duplicate Create succeeded")
	}
	if _, err := fs.Create("", nil); err == nil {
		t.Fatal("empty-name Create succeeded")
	}
}

func TestBlockAllocationContiguous(t *testing.T) {
	fs := New(100)
	a := fs.MustCreate("a", make([]byte, 250)) // 3 blocks
	b := fs.MustCreate("b", make([]byte, 100)) // 1 block
	c := fs.MustCreate("c", make([]byte, 1))   // 1 block
	if a.Start != 0 || a.NBlocks() != 3 {
		t.Fatalf("a: start %d nblocks %d", a.Start, a.NBlocks())
	}
	if b.Start != 3 || b.NBlocks() != 1 {
		t.Fatalf("b: start %d nblocks %d", b.Start, b.NBlocks())
	}
	if c.Start != 4 {
		t.Fatalf("c: start %d", c.Start)
	}
	if fs.TotalBlocks() != 5 {
		t.Fatalf("TotalBlocks = %d, want 5", fs.TotalBlocks())
	}
}

func TestEmptyFileStillConsumesSlot(t *testing.T) {
	fs := New(100)
	e := fs.MustCreate("empty", nil)
	f := fs.MustCreate("next", make([]byte, 1))
	if e.Start == f.Start {
		t.Fatal("empty file shares Start with next file")
	}
}

func TestLogicalBlock(t *testing.T) {
	fs := New(100)
	fs.MustCreate("pad", make([]byte, 550)) // 6 blocks
	f := fs.MustCreate("f", make([]byte, 250))
	if lb := f.LogicalBlock(0); lb != 6 {
		t.Fatalf("LogicalBlock(0) = %d, want 6", lb)
	}
	if lb := f.LogicalBlock(2); lb != 8 {
		t.Fatalf("LogicalBlock(2) = %d, want 8", lb)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range LogicalBlock did not panic")
		}
	}()
	f.LogicalBlock(3)
}

func TestInoUniqueAndResolvable(t *testing.T) {
	fs := New(100)
	a := fs.MustCreate("a", nil)
	b := fs.MustCreate("b", nil)
	if a.Ino() == b.Ino() {
		t.Fatal("duplicate inode numbers")
	}
	got, ok := fs.ByIno(b.Ino())
	if !ok || got != b {
		t.Fatal("ByIno failed")
	}
}

func TestNamesSorted(t *testing.T) {
	fs := New(100)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		fs.MustCreate(n, nil)
	}
	names := fs.Names()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("Names = %v", names)
	}
}

func TestFDTableOpenCloseLowestFree(t *testing.T) {
	fs := New(100)
	fs.MustCreate("f", make([]byte, 10))
	tb := NewFDTable()
	fd1 := tb.Open(fs, "f")
	fd2 := tb.Open(fs, "f")
	if fd1 != 3 || fd2 != 4 {
		t.Fatalf("fds = %d,%d want 3,4", fd1, fd2)
	}
	if e := tb.Close(fd1); e != OK {
		t.Fatalf("Close: %v", e)
	}
	fd3 := tb.Open(fs, "f")
	if fd3 != 3 {
		t.Fatalf("reopened fd = %d, want lowest-free 3", fd3)
	}
	if fd := tb.Open(fs, "missing"); Errno(fd) != ENOENT {
		t.Fatalf("open missing = %d, want ENOENT", fd)
	}
	if e := tb.Close(99); e != EBADF {
		t.Fatalf("close bad fd = %v, want EBADF", e)
	}
}

func TestFDTableExhaustion(t *testing.T) {
	fs := New(100)
	fs.MustCreate("f", nil)
	tb := NewFDTable()
	for i := 3; i < MaxFDs; i++ {
		if fd := tb.Open(fs, "f"); fd < 0 {
			t.Fatalf("open %d failed early: %d", i, fd)
		}
	}
	if fd := tb.Open(fs, "f"); Errno(fd) != EMFILE {
		t.Fatalf("over-limit open = %d, want EMFILE", fd)
	}
}

func TestSeekWhence(t *testing.T) {
	fs := New(100)
	fs.MustCreate("f", make([]byte, 100))
	tb := NewFDTable()
	fd := tb.Open(fs, "f")
	if n := tb.SeekFD(fd, 10, 0); n != 10 {
		t.Fatalf("SEEK_SET = %d", n)
	}
	if n := tb.SeekFD(fd, 5, 1); n != 15 {
		t.Fatalf("SEEK_CUR = %d", n)
	}
	if n := tb.SeekFD(fd, -20, 2); n != 80 {
		t.Fatalf("SEEK_END = %d", n)
	}
	if n := tb.SeekFD(fd, -200, 1); Errno(n) != EINVAL {
		t.Fatalf("negative seek = %d, want EINVAL", n)
	}
	if n := tb.SeekFD(fd, 0, 7); Errno(n) != EINVAL {
		t.Fatalf("bad whence = %d, want EINVAL", n)
	}
	if n := tb.SeekFD(99, 0, 0); Errno(n) != EBADF {
		t.Fatalf("seek bad fd = %d, want EBADF", n)
	}
}

func TestAdvanceAndFile(t *testing.T) {
	fs := New(100)
	fs.MustCreate("f", make([]byte, 100))
	tb := NewFDTable()
	fd := tb.Open(fs, "f")
	tb.Advance(fd, 30)
	_, off, e := tb.File(fd)
	if e != OK || off != 30 {
		t.Fatalf("offset = %d (%v), want 30", off, e)
	}
	if _, _, e := tb.File(42); e != EBADF {
		t.Fatalf("File(42) errno = %v, want EBADF", e)
	}
	tb.Advance(42, 10) // no-op, must not panic
}

func TestCloneIsolation(t *testing.T) {
	fs := New(100)
	fs.MustCreate("f", make([]byte, 100))
	orig := NewFDTable()
	fd := orig.Open(fs, "f")
	orig.Advance(fd, 10)

	clone := orig.Clone()
	clone.Advance(fd, 50)
	cfd := clone.Open(fs, "f") // new fd only in clone

	_, off, _ := orig.File(fd)
	if off != 10 {
		t.Fatalf("original offset mutated: %d", off)
	}
	if _, _, e := orig.File(cfd); e != EBADF {
		t.Fatal("clone's open leaked into original")
	}
	_, coff, _ := clone.File(fd)
	if coff != 60 {
		t.Fatalf("clone offset = %d, want 60", coff)
	}
}

func TestErrnoStrings(t *testing.T) {
	for _, e := range []Errno{ENOENT, EBADF, EINVAL, EMFILE, ESPIPE, ENOSYS, EACCESS, Errno(-99)} {
		if e.Error() == "" {
			t.Fatalf("empty error string for %d", e)
		}
	}
}

// Property: files never overlap in logical block space.
func TestPropertyNoBlockOverlap(t *testing.T) {
	f := func(sizes []uint16) bool {
		fs := New(512)
		type span struct{ start, end int64 }
		var spans []span
		for i, s := range sizes {
			file := fs.MustCreate(fmt.Sprintf("f%d", i), make([]byte, int(s)))
			end := file.Start + file.NBlocks()
			if end == file.Start {
				end++
			}
			spans = append(spans, span{file.Start, end})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.start < b.end && b.start < a.end {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: descriptor numbers in a table are always unique and >= 3.
func TestPropertyFDUniqueness(t *testing.T) {
	f := func(ops []bool) bool {
		fs := New(512)
		fs.MustCreate("f", make([]byte, 10))
		tb := NewFDTable()
		var open []int64
		for _, doOpen := range ops {
			if doOpen || len(open) == 0 {
				fd := tb.Open(fs, "f")
				if fd < 3 {
					return false
				}
				for _, o := range open {
					if o == fd {
						return false
					}
				}
				open = append(open, fd)
			} else {
				fd := open[len(open)-1]
				open = open[:len(open)-1]
				if tb.Close(fd) != OK {
					return false
				}
			}
		}
		return tb.Len() == len(open)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
