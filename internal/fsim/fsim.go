// Package fsim provides the simulated file system the benchmarks run
// against: a flat namespace of immutable files laid out contiguously in a
// global logical-block space (the paper created a fresh file system for its
// experiments, so files are unfragmented), plus open-file descriptor tables.
//
// fsim holds file *content*; timing lives in the disk and cache layers. The
// striping pseudodevice (internal/disk) maps fsim's logical block numbers to
// physical (disk, block) pairs.
//
// Descriptor tables are a first-class type because SpecHint's speculating
// thread maintains its own view of the process's descriptors: a speculative
// open must not be visible to normal execution, so the restart protocol
// clones the original thread's table and speculation mutates only the clone.
package fsim

import (
	"fmt"
	"sort"
)

// File is an immutable file: its content and its position in the logical
// block space.
type File struct {
	Name  string
	Data  []byte
	Start int64 // first logical block number
	ino   int64

	blockSize int
}

// Ino returns the file's inode number (stable, unique).
func (f *File) Ino() int64 { return f.ino }

// Size returns the file length in bytes.
func (f *File) Size() int64 { return int64(len(f.Data)) }

// NBlocks returns the number of file-system blocks the file occupies.
func (f *File) NBlocks() int64 {
	return (f.Size() + int64(f.blockSize) - 1) / int64(f.blockSize)
}

// LogicalBlock returns the global logical block number of the file's i'th
// block. It panics if i is out of range; callers validate offsets first.
func (f *File) LogicalBlock(i int64) int64 {
	if i < 0 || i >= f.NBlocks() {
		panic(fmt.Sprintf("fsim: block %d of %q (has %d)", i, f.Name, f.NBlocks()))
	}
	return f.Start + i
}

// FS is the file system: a namespace plus the logical block allocator.
type FS struct {
	blockSize   int
	byName      map[string]*File
	byIno       map[int64]*File
	nextBlock   int64
	nextIno     int64
	alignBlocks int64
	gapBlocks   int64
	gapJitter   int64
}

// New returns an empty file system with the given block size.
func New(blockSize int) *FS {
	if blockSize <= 0 {
		panic(fmt.Sprintf("fsim: block size %d", blockSize))
	}
	return &FS{
		blockSize:   blockSize,
		byName:      make(map[string]*File),
		byIno:       make(map[int64]*File),
		nextIno:     2, // inode numbering traditionally starts past the root
		alignBlocks: 1,
	}
}

// SetLayout controls how files are placed in the logical block space: each
// file starts gap blocks past the previous one, rounded up to an align-block
// boundary. The default (align 1, gap 0) packs files contiguously; benchmark
// file sets use a stripe-unit gap so that starting a new file costs a disk
// positioning, as it does on a real file system where files and their
// metadata are scattered.
func (fs *FS) SetLayout(alignBlocks, gapBlocks int64) {
	if alignBlocks < 1 || gapBlocks < 0 {
		panic(fmt.Sprintf("fsim: bad layout align=%d gap=%d", alignBlocks, gapBlocks))
	}
	fs.alignBlocks = alignBlocks
	fs.gapBlocks = gapBlocks
}

// SetGapJitter adds a deterministic per-file extra gap of up to maxExtra
// blocks, so that file starts land on varying stripe units (and therefore
// rotate across the disks of an array) the way an aged allocator scatters
// them.
func (fs *FS) SetGapJitter(maxExtra int64) {
	if maxExtra < 0 {
		panic(fmt.Sprintf("fsim: negative gap jitter %d", maxExtra))
	}
	fs.gapJitter = maxExtra
}

// BlockSize returns the file-system block size in bytes.
func (fs *FS) BlockSize() int { return fs.blockSize }

// Create adds a file with the given content, allocating contiguous logical
// blocks. Creating an existing name is an error: benchmark file sets are
// immutable.
func (fs *FS) Create(name string, data []byte) (*File, error) {
	if name == "" {
		return nil, fmt.Errorf("fsim: empty file name")
	}
	if _, ok := fs.byName[name]; ok {
		return nil, fmt.Errorf("fsim: %q already exists", name)
	}
	start := fs.nextBlock
	if len(fs.byName) > 0 {
		start += fs.gapBlocks
		if fs.gapJitter > 0 {
			start += (fs.nextIno * 7) % (fs.gapJitter + 1)
		}
	}
	start = (start + fs.alignBlocks - 1) / fs.alignBlocks * fs.alignBlocks
	f := &File{Name: name, Data: data, Start: start, ino: fs.nextIno, blockSize: fs.blockSize}
	fs.nextBlock = start
	fs.nextIno++
	fs.nextBlock += f.NBlocks()
	if f.NBlocks() == 0 {
		fs.nextBlock++ // even empty files consume a block slot, keeps Start unique
	}
	fs.byName[name] = f
	fs.byIno[f.ino] = f
	return f, nil
}

// MustCreate is Create for test and generator code with known-good names.
func (fs *FS) MustCreate(name string, data []byte) *File {
	f, err := fs.Create(name, data)
	if err != nil {
		panic(err)
	}
	return f
}

// Lookup finds a file by name.
func (fs *FS) Lookup(name string) (*File, bool) {
	f, ok := fs.byName[name]
	return f, ok
}

// ByIno finds a file by inode number.
func (fs *FS) ByIno(ino int64) (*File, bool) {
	f, ok := fs.byIno[ino]
	return f, ok
}

// TotalBlocks returns the number of logical blocks allocated so far.
func (fs *FS) TotalBlocks() int64 { return fs.nextBlock }

// Names returns all file names in sorted order (deterministic iteration).
func (fs *FS) Names() []string {
	names := make([]string, 0, len(fs.byName))
	for n := range fs.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Errno is a tiny errno-style error code for VM syscall returns.
type Errno int64

const (
	OK      Errno = 0
	ENOENT  Errno = -2
	EIO     Errno = -5
	EBADF   Errno = -9
	EINVAL  Errno = -22
	EMFILE  Errno = -24
	ESPIPE  Errno = -29
	ENOSYS  Errno = -38
	EACCESS Errno = -13
)

func (e Errno) Error() string {
	switch e {
	case ENOENT:
		return "no such file or directory"
	case EIO:
		return "input/output error"
	case EBADF:
		return "bad file descriptor"
	case EINVAL:
		return "invalid argument"
	case EMFILE:
		return "too many open files"
	case ESPIPE:
		return "illegal seek"
	case ENOSYS:
		return "function not implemented"
	case EACCESS:
		return "permission denied"
	}
	return fmt.Sprintf("errno %d", int64(e))
}

// openFile is one descriptor-table entry.
type openFile struct {
	file   *File
	offset int64
}

// MaxFDs bounds a descriptor table, matching a typical per-process limit.
const MaxFDs = 256

// FDTable maps small integer descriptors to open files. Descriptors are
// allocated lowest-free-first, like a real kernel, so a speculating thread
// that clones the table and follows the same code path allocates the same
// numbers as normal execution will — a requirement for speculation to stay
// on track across open calls.
type FDTable struct {
	entries map[int64]*openFile
}

// NewFDTable returns an empty descriptor table.
func NewFDTable() *FDTable {
	return &FDTable{entries: make(map[int64]*openFile)}
}

// Clone returns a deep copy of the table (offsets are copied, files shared).
func (t *FDTable) Clone() *FDTable {
	c := NewFDTable()
	for fd, of := range t.entries {
		c.entries[fd] = &openFile{file: of.file, offset: of.offset}
	}
	return c
}

// Open opens name read-only and returns the new descriptor, or an Errno < 0.
func (t *FDTable) Open(fs *FS, name string) int64 {
	f, ok := fs.Lookup(name)
	if !ok {
		return int64(ENOENT)
	}
	// Lowest free descriptor, starting at 3 (0-2 are std streams).
	for fd := int64(3); fd < MaxFDs; fd++ {
		if _, used := t.entries[fd]; !used {
			t.entries[fd] = &openFile{file: f}
			return fd
		}
	}
	return int64(EMFILE)
}

// Close releases a descriptor.
func (t *FDTable) Close(fd int64) Errno {
	if _, ok := t.entries[fd]; !ok {
		return EBADF
	}
	delete(t.entries, fd)
	return OK
}

// File returns the file and current offset for fd.
func (t *FDTable) File(fd int64) (*File, int64, Errno) {
	of, ok := t.entries[fd]
	if !ok {
		return nil, 0, EBADF
	}
	return of.file, of.offset, OK
}

// SeekFD sets the file offset. whence follows the Unix convention:
// 0 = set, 1 = cur, 2 = end. Returns the new offset or an Errno < 0.
func (t *FDTable) SeekFD(fd, offset, whence int64) int64 {
	of, ok := t.entries[fd]
	if !ok {
		return int64(EBADF)
	}
	var base int64
	switch whence {
	case 0:
		base = 0
	case 1:
		base = of.offset
	case 2:
		base = of.file.Size()
	default:
		return int64(EINVAL)
	}
	n := base + offset
	if n < 0 {
		return int64(EINVAL)
	}
	of.offset = n
	return n
}

// Advance moves the offset after a successful read of n bytes.
func (t *FDTable) Advance(fd, n int64) {
	if of, ok := t.entries[fd]; ok {
		of.offset += n
	}
}

// Len returns the number of open descriptors.
func (t *FDTable) Len() int { return len(t.entries) }
