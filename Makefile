GO ?= go

.PHONY: all build test race vet fmt lint speclint synth fuzz smoke-faults smoke-cluster smoke-overload smoke-speed smoke-replay ci bench bench-check bench-trace

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs the Go static analyzers: go vet always, staticcheck when it is on
# PATH (CI installs the pinned version; locally the step is skipped with a
# note rather than failing on a missing tool).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs the pinned version)"; \
	fi

# speclint runs the shadow-text verifier over every benchmark app's
# transformed binary; a nonzero exit means a transform invariant does not hold.
speclint:
	$(GO) run ./cmd/spechint -app all -lint
	$(GO) run ./cmd/spechint -app all -lint -no-stack-opt

# synth synthesizes static hints for every benchmark app and audits them
# against a dynamic static-mode run; an unconsumed hint is a nonzero exit.
synth:
	$(GO) run ./cmd/spechint -app all -synthesize

# fuzz runs the native fault-containment fuzz target for a short budget.
fuzz:
	$(GO) test -fuzz=FuzzRun -fuzztime=10s -run '^$$' ./internal/core

# smoke runs the fault-injection degradation sweep at test scale.
smoke-faults:
	$(GO) run ./cmd/tipbench -exp faults -scale test -json BENCH_faults_test.json

# smoke-cluster runs the sharded-service sweep at test scale.
smoke-cluster:
	$(GO) run ./cmd/tipbench -cluster -cluster-shards 1,2 -scale test -json BENCH_cluster_test.json

# smoke-overload runs the admission-control/failover sweep at test scale.
smoke-overload:
	$(GO) run ./cmd/tipbench -overload -scale test -json BENCH_overload_test.json

# smoke-replay runs the trace-replay grid (modern apps in all modes plus the
# capture→replay round trip) at test scale; the run itself fails on a
# non-exact round trip.
smoke-replay:
	$(GO) run ./cmd/tipbench -replay -scale test -json BENCH_replay_test.json

# smoke-speed measures event-loop/VM/end-to-end throughput at test scale.
# Wall numbers are machine-dependent; the committed trajectory lives in
# bench/results/BENCH_speed.json (regenerate at full scale when the fast
# paths change).
smoke-speed:
	$(GO) run ./cmd/tipbench -speed -scale test -json BENCH_speed_test.json

ci: lint fmt build race speclint synth smoke-faults smoke-cluster smoke-overload smoke-speed smoke-replay fuzz

# bench regenerates the canonical full-scale multiprogramming sweep into the
# committed baseline under bench/results/ (expect minutes). Scratch runs that
# should stay out of git can still write BENCH_*.json anywhere else — the
# ignore rules swallow those but keep bench/results/ tracked.
bench:
	@mkdir -p bench/results
	$(GO) run ./cmd/tipbench -exp multi -json bench/results/BENCH_multi.json

# bench-check reruns the full-scale multi sweep and fails if it drifted more
# than 10% from the committed baseline or flipped a who-wins ordering
# (Figure 3 shape). Run it after simulator changes; if the drift is
# intentional, regenerate the baseline with make bench and commit the diff.
bench-check:
	$(GO) run ./cmd/tipbench -check bench/results/BENCH_multi.json

# bench-trace records a full cross-layer Chrome trace of a speculating group
# next to the baseline; open it in chrome://tracing or ui.perfetto.dev.
bench-trace:
	@mkdir -p bench/results
	$(GO) run ./cmd/tipbench -exp multi -scale test -multimax 3 \
		-trace-json bench/results/TRACE_multi.json
