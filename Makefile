GO ?= go

.PHONY: all build test race vet lint ci bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the shadow-text verifier over every benchmark app's transformed
# binary; a nonzero exit means a transform invariant does not hold.
lint:
	$(GO) run ./cmd/spechint -app all -lint
	$(GO) run ./cmd/spechint -app all -lint -no-stack-opt

ci: vet build race lint

bench:
	$(GO) test -v ./internal/bench/...
