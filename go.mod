module spechint

go 1.22
