// Package spechint_bench regenerates the paper's tables and figures as Go
// benchmarks: one benchmark per table/figure. Reported custom metrics are
// the headline numbers of each experiment (percent improvements, overheads),
// so `go test -bench=. -benchmem` both exercises the full system and prints
// the reproduction's key results. Full tables are printed by cmd/tipbench.
package spechint_bench

import (
	"io"
	"runtime"
	"strconv"
	"testing"

	"spechint/internal/apps"
	"spechint/internal/bench"
	"spechint/internal/core"
	"spechint/internal/spechint"
)

// reportTriple runs the three variants of app at full scale and reports the
// paper's headline metrics.
func reportTriple(b *testing.B, app apps.App, scale apps.Scale) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tr, err := bench.RunTriple(app, scale, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.Improvement(tr.Orig, tr.Spec), "spec_improv_%")
		b.ReportMetric(bench.Improvement(tr.Orig, tr.Manual), "manual_improv_%")
		b.ReportMetric(tr.Orig.Seconds(), "orig_s")
		b.ReportMetric(tr.Spec.Seconds(), "spec_s")
	}
}

// BenchmarkFigure3Agrep etc. regenerate the headline chart, one app per
// benchmark so metrics stay attributable.
func BenchmarkFigure3Agrep(b *testing.B)      { reportTriple(b, apps.Agrep, apps.FullScale()) }
func BenchmarkFigure3Gnuld(b *testing.B)      { reportTriple(b, apps.Gnuld, apps.FullScale()) }
func BenchmarkFigure3XDataSlice(b *testing.B) { reportTriple(b, apps.XDataSlice, apps.FullScale()) }

// BenchmarkTable1 reproduces the manual-hint improvements table.
func BenchmarkTable1(b *testing.B) {
	scale := apps.FullScale()
	for i := 0; i < b.N; i++ {
		for _, app := range bench.Apps {
			man, _, err := bench.Run(app, core.ModeManual, scale, nil)
			if err != nil {
				b.Fatal(err)
			}
			orig, _, err := bench.Run(app, core.ModeNoHint, scale, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(bench.Improvement(orig, man), app.String()+"_%")
		}
	}
}

// BenchmarkTable3 measures the binary transformation itself.
func BenchmarkTable3(b *testing.B) {
	scale := apps.FullScale()
	for i := 0; i < b.N; i++ {
		for _, app := range bench.Apps {
			bundle, err := apps.Build(app, scale)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(bundle.Transform.SizeIncreasePct(), app.String()+"_size_%")
		}
	}
}

// BenchmarkFigure4 measures worst-case overhead (TIP ignoring hints).
func BenchmarkFigure4(b *testing.B) {
	scale := apps.FullScale()
	for i := 0; i < b.N; i++ {
		for _, app := range bench.Apps {
			orig, _, err := bench.Run(app, core.ModeNoHint, scale, nil)
			if err != nil {
				b.Fatal(err)
			}
			ig, _, err := bench.Run(app, core.ModeSpeculating, scale, func(c *core.Config) {
				c.TIP.IgnoreHints = true
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*(float64(ig.Elapsed)/float64(orig.Elapsed)-1), app.String()+"_overhead_%")
		}
	}
}

// BenchmarkTable4 reports hinting coverage.
func BenchmarkTable4(b *testing.B) {
	scale := apps.FullScale()
	for i := 0; i < b.N; i++ {
		for _, app := range bench.Apps {
			spec, _, err := bench.Run(app, core.ModeSpeculating, scale, nil)
			if err != nil {
				b.Fatal(err)
			}
			hinted := 100 * float64(spec.Tip.HintedReadCalls) / float64(spec.Tip.ReadCalls)
			b.ReportMetric(hinted, app.String()+"_hinted_%")
		}
	}
}

// BenchmarkTable5 reports prefetch effectiveness of the speculating runs.
func BenchmarkTable5(b *testing.B) {
	scale := apps.FullScale()
	for i := 0; i < b.N; i++ {
		for _, app := range bench.Apps {
			spec, _, err := bench.Run(app, core.ModeSpeculating, scale, nil)
			if err != nil {
				b.Fatal(err)
			}
			pref := spec.Tip.PrefetchedBlocks()
			if pref > 0 {
				b.ReportMetric(100*float64(spec.Cache.FullyPref)/float64(pref), app.String()+"_fully_%")
			}
		}
	}
}

// BenchmarkTable6 reports speculation side-effects.
func BenchmarkTable6(b *testing.B) {
	scale := apps.FullScale()
	for i := 0; i < b.N; i++ {
		for _, app := range bench.Apps {
			spec, _, err := bench.Run(app, core.ModeSpeculating, scale, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(spec.FootprintBytes)/1024, app.String()+"_footprint_KB")
			b.ReportMetric(float64(spec.SpecSignals), app.String()+"_signals")
		}
	}
}

// BenchmarkTable7 sweeps the file cache size.
func BenchmarkTable7(b *testing.B) {
	scale := apps.SweepScale()
	for i := 0; i < b.N; i++ {
		for _, mb := range []int{6, 12, 64} {
			tr, err := bench.RunTriple(apps.Gnuld, scale, func(c *core.Config) {
				c.TIP.CacheBlocks = mb << 20 / c.Disk.BlockSize
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(bench.Improvement(tr.Orig, tr.Spec), "gnuld_spec_"+itoa(mb)+"MB_%")
		}
	}
}

// BenchmarkTable8 sweeps disks for the original applications.
func BenchmarkTable8(b *testing.B) {
	scale := apps.SweepScale()
	for i := 0; i < b.N; i++ {
		for _, d := range []int{1, 4, 10} {
			st, _, err := bench.Run(apps.Agrep, core.ModeNoHint, scale, func(c *core.Config) {
				c.Disk = core.TestbedDisk(d)
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.Seconds(), "agrep_orig_"+itoa(d)+"d_s")
		}
	}
}

// BenchmarkFigure5 sweeps the disk count for speculating and manual builds.
func BenchmarkFigure5(b *testing.B) {
	scale := apps.SweepScale()
	for i := 0; i < b.N; i++ {
		for _, d := range []int{1, 4, 10} {
			for _, app := range bench.Apps {
				tr, err := bench.RunTriple(app, scale, func(c *core.Config) {
					c.Disk = core.TestbedDisk(d)
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bench.Improvement(tr.Orig, tr.Spec), app.String()+"_"+itoa(d)+"d_%")
			}
		}
	}
}

// BenchmarkFigure6 sweeps the processor/disk speed ratio.
func BenchmarkFigure6(b *testing.B) {
	scale := apps.SweepScale()
	for i := 0; i < b.N; i++ {
		for _, r := range []int{1, 3, 9} {
			tr, err := bench.RunTriple(apps.Agrep, scale, func(c *core.Config) {
				c.Disk.DelayFactor = r
				c.Disk.MaxPrefetchPerDisk = 1
				c.MaxCycles *= int64(r)
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(bench.Improvement(tr.Orig, tr.Spec), "agrep_x"+itoa(r)+"_%")
		}
	}
}

// BenchmarkRegionSize is the §3.2.1 COW-region ablation.
func BenchmarkRegionSize(b *testing.B) {
	scale := apps.SweepScale()
	for i := 0; i < b.N; i++ {
		for _, rs := range []int{128, 1024, 8192} {
			st, _, err := bench.Run(apps.Gnuld, core.ModeSpeculating, scale, func(c *core.Config) {
				c.Machine.COWRegion = rs
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.Seconds(), "gnuld_"+itoa(rs)+"B_s")
		}
	}
}

// BenchmarkCancelThrottle is the §5 single-disk throttle experiment.
func BenchmarkCancelThrottle(b *testing.B) {
	scale := apps.SweepScale()
	for i := 0; i < b.N; i++ {
		orig, _, err := bench.Run(apps.Gnuld, core.ModeNoHint, scale, func(c *core.Config) {
			c.Disk = core.TestbedDisk(1)
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, throttle := range []int{0, 2} {
			st, _, err := bench.Run(apps.Gnuld, core.ModeSpeculating, scale, func(c *core.Config) {
				c.Disk = core.TestbedDisk(1)
				c.CancelThrottle = throttle
				c.CancelThrottleCycles = 500_000_000
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(bench.Improvement(orig, st), "throttle"+itoa(throttle)+"_%")
		}
	}
}

// BenchmarkTransform measures SpecHint tool throughput on the largest app.
func BenchmarkTransform(b *testing.B) {
	bundle, err := apps.Build(apps.Gnuld, apps.FullScale())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := spechint.Transform(bundle.Original, spechint.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkSweepWidth regenerates Figure 3 (nine independent simulation
// cells) with the given worker-pool width. Comparing the Serial and
// Parallel variants measures the fan-out engine's wall-clock win on this
// host; outputs are byte-identical at any width, so only time differs.
func benchmarkSweepWidth(b *testing.B, workers int) {
	old := bench.Parallelism
	bench.Parallelism = workers
	defer func() { bench.Parallelism = old }()
	scale := apps.SweepScale()
	for i := 0; i < b.N; i++ {
		if err := bench.RunByName("fig3", scale, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchmarkSweepWidth(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweepWidth(b, runtime.NumCPU()) }

func itoa(v int) string { return strconv.Itoa(v) }
