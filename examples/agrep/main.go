// Agrep example: the paper's text-search benchmark end to end.
//
// Agrep's read stream is completely determined by its argument list, so
// speculative execution hints essentially every data-returning read and
// matches the manually-hinted build — the paper's best case.
//
//	go run ./examples/agrep [-files N] [-disks D]
package main

import (
	"flag"
	"fmt"
	"log"

	"spechint/internal/apps"
	"spechint/internal/bench"
	"spechint/internal/core"
)

func main() {
	files := flag.Int("files", 200, "number of source files to search")
	disks := flag.Int("disks", 4, "disks in the array")
	flag.Parse()

	scale := apps.FullScale()
	scale.Agrep.NumFiles = *files
	mut := func(c *core.Config) { c.Disk = core.TestbedDisk(*disks) }

	fmt.Printf("Agrep: searching %d files for %q on %d disks\n\n",
		*files, scale.Agrep.Pattern, *disks)

	tr, err := bench.RunTriple(apps.Agrep, scale, mut)
	if err != nil {
		log.Fatal(err)
	}

	matches := tr.Orig.ExitCode >> 20
	fmt.Printf("pattern matches found: %d (all three builds agree)\n\n", matches)

	fmt.Printf("%-12s %10s %10s %12s %10s\n", "build", "elapsed", "reads", "hinted", "restarts")
	for _, row := range []struct {
		name string
		st   *core.RunStats
	}{{"original", tr.Orig}, {"speculating", tr.Spec}, {"manual", tr.Manual}} {
		fmt.Printf("%-12s %9.2fs %10d %11.1f%% %10d\n", row.name,
			row.st.Seconds(), row.st.ReadCalls,
			100*float64(row.st.HintedReads)/float64(row.st.ReadCalls),
			row.st.Restarts)
	}

	fmt.Printf("\nspeculating improvement: %.0f%%   manual improvement: %.0f%%\n",
		bench.Improvement(tr.Orig, tr.Spec), bench.Improvement(tr.Orig, tr.Manual))
	fmt.Printf("dilation factor (hint interval / read interval): %.1f\n", tr.Spec.DilationFactor())
	fmt.Printf("(the EOF read per file is never hinted, which is why coverage is ~%d%%\n",
		int(100*float64(tr.Spec.HintedReads)/float64(tr.Spec.ReadCalls)))
	fmt.Println(" of calls but >99% of bytes, exactly as the paper's Table 4 explains)")
}
