// Gnuld example: the paper's hard case — an object-code linker whose reads
// chase pointers through metadata (header -> symbol header -> symbol tables
// -> debug chunks). Data dependencies cap what speculation can hint, and
// strayed speculation issues erroneous hints; the restart protocol and TIP's
// accuracy discounting keep the damage bounded.
//
//	go run ./examples/gnuld [-objects N] [-disks D] [-throttle]
package main

import (
	"flag"
	"fmt"
	"log"

	"spechint/internal/apps"
	"spechint/internal/bench"
	"spechint/internal/core"
)

func main() {
	objects := flag.Int("objects", 240, "object files to link")
	disks := flag.Int("disks", 4, "disks in the array")
	throttle := flag.Bool("throttle", false, "enable the §5 cancel throttle")
	flag.Parse()

	scale := apps.FullScale()
	scale.Gnuld.NumFiles = *objects
	mut := func(c *core.Config) {
		c.Disk = core.TestbedDisk(*disks)
		if *throttle {
			c.CancelThrottle = 2
			c.CancelThrottleCycles = 500_000_000
		}
	}

	fmt.Printf("Gnuld: linking %d object files on %d disks (throttle: %v)\n\n",
		*objects, *disks, *throttle)

	tr, err := bench.RunTriple(apps.Gnuld, scale, mut)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("link checksum: %d; output written: %d KB (all builds agree)\n\n",
		tr.Orig.ExitCode, tr.Orig.WriteBytes/1024)

	fmt.Printf("%-12s %10s %10s %12s %12s %10s\n",
		"build", "elapsed", "reads", "hinted", "erroneous", "restarts")
	for _, row := range []struct {
		name string
		st   *core.RunStats
	}{{"original", tr.Orig}, {"speculating", tr.Spec}, {"manual", tr.Manual}} {
		fmt.Printf("%-12s %9.2fs %10d %11.1f%% %12d %10d\n", row.name,
			row.st.Seconds(), row.st.ReadCalls,
			100*float64(row.st.HintedReads)/float64(row.st.ReadCalls),
			row.st.Tip.InaccurateCalls(), row.st.Restarts)
	}

	fmt.Printf("\nspeculating improvement: %.0f%%   manual improvement: %.0f%%\n",
		bench.Improvement(tr.Orig, tr.Spec), bench.Improvement(tr.Orig, tr.Manual))
	fmt.Println("\nwhy speculation trails manual here (paper §4.4): a read that depends")
	fmt.Println("on a prior read cannot be hinted unless an I/O stall separates them,")
	fmt.Println("and the manual build was restructured to batch its metadata passes.")
}
