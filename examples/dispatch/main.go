// Dispatch example: speculation through switch statements and function
// pointers — the control transfers §3.2.1 works hardest for.
//
// The program is a record processor: each chunk's first byte selects a
// handler through a jump table (a switch statement in a format SpecHint
// recognizes and redirects statically), and the checksum routine is called
// through a function pointer (which cannot be statically resolved and goes
// through the dynamic handling routine at run time).
//
//	go run ./examples/dispatch [-files N] [-disks D]
package main

import (
	"flag"
	"fmt"
	"log"

	"spechint/internal/asm"
	"spechint/internal/core"
	"spechint/internal/fsim"
	"spechint/internal/spechint"
	"spechint/internal/workload"
)

func source(names []string) string {
	s := `
.data
buf:   .space 8192
tbl:   .jumptable absolute kind0, kind1, kind2, kind3
fnptr: .word fold
`
	s += fmt.Sprintf("nfiles: .word %d\nfiles: .word ", len(names))
	for i := range names {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("p%d", i)
	}
	s += "\n"
	for i, n := range names {
		s += fmt.Sprintf("p%d: .asciz %q\n", i, n)
	}
	s += `
.text
main:
    ldw  r20, nfiles
    movi r21, files
next:
    beq  r20, r0, done
    ldw  r1, (r21)
    syscall open
    mov  r10, r1
rd:
    mov  r1, r10
    movi r2, buf
    movi r3, 8192
    syscall read
    beq  r1, r0, eof
    mov  r15, r1
    ; dispatch on the record kind (buf[0] & 3)
    ldb  r4, buf
    andi r4, r4, 3
    shli r4, r4, 3
    ldw  r6, tbl(r4)
    jr   r6
kind0: addi r23, r23, 1
    jmp  folded
kind1: addi r24, r24, 1
    jmp  folded
kind2: addi r25, r25, 1
    jmp  folded
kind3: addi r27, r27, 1
folded:
    ldw  r7, fnptr
    callr r7
    jmp  rd
eof:
    mov  r1, r10
    syscall close
    addi r21, r21, 8
    addi r20, r20, -1
    jmp  next
done:
    movi r2, 0xffffff
    and  r1, r22, r2
    syscall exit

fold:
    movi r4, buf
    add  r5, r4, r15
f1:
    ldw  r6, (r4)
    add  r22, r22, r6
    addi r4, r4, 32
    blt  r4, r5, f1
    ret
`
	return s
}

func buildFS(n int) (*fsim.FS, []string) {
	fs := fsim.New(8192)
	workload.SetBenchLayout(fs)
	var names []string
	for i := 0; i < n; i++ {
		data := make([]byte, 24000+i*700)
		for j := range data {
			data[j] = byte((i*131 + j*17) % 251)
		}
		name := fmt.Sprintf("records/batch%03d.rec", i)
		fs.MustCreate(name, data)
		names = append(names, name)
	}
	return fs, names
}

func main() {
	files := flag.Int("files", 80, "record files to process")
	disks := flag.Int("disks", 4, "disks in the array")
	flag.Parse()

	prog := asm.MustAssemble(source(func() []string { _, n := buildFS(*files); return n }()))
	tp, ts, err := spechint.Transform(prog, spechint.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transform: %d jump tables recognized statically, %d indirect sites via the dynamic handler\n\n",
		ts.TablesStatic, ts.DynamicJumps)

	cfg := core.DefaultConfig(core.ModeNoHint)
	cfg.Disk = core.TestbedDisk(*disks)
	fs1, _ := buildFS(*files)
	origSys, err := core.New(cfg, prog, fs1)
	if err != nil {
		log.Fatal(err)
	}
	orig, err := origSys.Run()
	if err != nil {
		log.Fatal(err)
	}

	scfg := core.DefaultConfig(core.ModeSpeculating)
	scfg.Disk = core.TestbedDisk(*disks)
	fs2, _ := buildFS(*files)
	specSys, err := core.New(scfg, tp, fs2)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := specSys.Run()
	if err != nil {
		log.Fatal(err)
	}

	if orig.ExitCode != spec.ExitCode {
		log.Fatalf("checksums diverged: %d vs %d", orig.ExitCode, spec.ExitCode)
	}
	fmt.Printf("%-12s %10s %12s\n", "build", "elapsed", "hinted")
	fmt.Printf("%-12s %9.2fs %11.1f%%\n", "original", orig.Seconds(), 0.0)
	fmt.Printf("%-12s %9.2fs %11.1f%%\n", "speculating", spec.Seconds(),
		100*float64(spec.HintedReads)/float64(spec.ReadCalls))
	fmt.Printf("\nimprovement: %.0f%% — speculation followed every switch and\n",
		100*(1-float64(spec.Elapsed)/float64(orig.Elapsed)))
	fmt.Println("function-pointer call in the shadow code (checksum identical).")
}
