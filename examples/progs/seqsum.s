; seqsum — read ten files end to end, checksum their bytes, print the sum.
;
; A standalone copy of the quickstart program for driving specrun directly;
; CI uses it as the -trace-json smoke test. The input files data/part0 ..
; data/part9 come from the host via -dir:
;
;   mkdir -p /tmp/seqsum/data && for i in $(seq 0 9); do
;       head -c $((20000 + i * 1000)) /dev/zero | tr '\0' x > /tmp/seqsum/data/part$i
;   done
;   go run ./cmd/specrun -file examples/progs/seqsum.s -dir /tmp/seqsum -mode spec
;
; The reads are argv-determined (the file list is static data), so the
; speculating build hints essentially all of them — the best case from the
; paper, visible immediately in the -trace timeline or a -trace-json export.
.data
buf:    .space 8192
nfiles: .word 10
files:  .word f0, f1, f2, f3, f4, f5, f6, f7, f8, f9
f0: .asciz "data/part0"
f1: .asciz "data/part1"
f2: .asciz "data/part2"
f3: .asciz "data/part3"
f4: .asciz "data/part4"
f5: .asciz "data/part5"
f6: .asciz "data/part6"
f7: .asciz "data/part7"
f8: .asciz "data/part8"
f9: .asciz "data/part9"
.text
main:
    ldw  r20, nfiles
    movi r21, files
next:
    beq  r20, r0, done
    ldw  r1, (r21)
    syscall open
    mov  r10, r1
loop:
    mov  r1, r10
    movi r2, buf
    movi r3, 8192
    syscall read
    beq  r1, r0, eof
    movi r4, buf
    add  r5, r4, r1
sum:
    ldb  r6, (r4)
    add  r22, r22, r6
    addi r4, r4, 1
    blt  r4, r5, sum
    jmp  loop
eof:
    mov  r1, r10
    syscall close
    addi r21, r21, 8
    addi r20, r20, -1
    jmp  next
done:
    andi r1, r22, 0xffff
    syscall printint
    movi r1, 0
    syscall exit
