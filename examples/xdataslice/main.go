// XDataSlice example: the paper's visualization benchmark — arbitrary slices
// through a 3-D volume far larger than the file cache, read one block at a
// time. After a single header read every block address is computable, so
// speculation hints nearly everything; meanwhile the OS's sequential
// read-ahead wastes most of its prefetches on this access pattern, which is
// why the original build is so slow.
//
//	go run ./examples/xdataslice [-n N] [-slices S] [-disks D]
package main

import (
	"flag"
	"fmt"
	"log"

	"spechint/internal/apps"
	"spechint/internal/bench"
	"spechint/internal/core"
)

func main() {
	n := flag.Int("n", 512, "volume dimension (N^3 32-bit elements)")
	slices := flag.Int("slices", 25, "random slices to retrieve")
	disks := flag.Int("disks", 4, "disks in the array")
	flag.Parse()

	scale := apps.FullScale()
	scale.XDS.N = *n
	scale.XDS.NumSlices = *slices
	mut := func(c *core.Config) { c.Disk = core.TestbedDisk(*disks) }

	fmt.Printf("XDataSlice: %d slices through a %d^3 volume (%d MB) on %d disks\n\n",
		*slices, *n, int64(*n)*int64(*n)*int64(*n)*4>>20, *disks)

	tr, err := bench.RunTriple(apps.XDataSlice, scale, mut)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %10s %10s %12s %16s\n", "build", "elapsed", "reads", "hinted", "unused prefetch")
	for _, row := range []struct {
		name string
		st   *core.RunStats
	}{{"original", tr.Orig}, {"speculating", tr.Spec}, {"manual", tr.Manual}} {
		unused := row.st.Cache.UnusedHint + row.st.Cache.UnusedRA
		pref := row.st.Tip.PrefetchedBlocks()
		pct := 0.0
		if pref > 0 {
			pct = 100 * float64(unused) / float64(pref)
		}
		fmt.Printf("%-12s %9.2fs %10d %11.1f%% %10d (%2.0f%%)\n", row.name,
			row.st.Seconds(), row.st.ReadCalls,
			100*float64(row.st.HintedReads)/float64(row.st.ReadCalls),
			unused, pct)
	}

	fmt.Printf("\nspeculating improvement: %.0f%%   manual improvement: %.0f%%\n",
		bench.Improvement(tr.Orig, tr.Spec), bench.Improvement(tr.Orig, tr.Manual))
	fmt.Println("\nnote the original build's unused prefetches: the sequential read-ahead")
	fmt.Println("policy is 'entirely too aggressive' for nonsequential reads (paper §4.4),")
	fmt.Println("while the hinting builds all but eliminate erroneous prefetching.")
}
