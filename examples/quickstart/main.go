// Quickstart: the whole pipeline on a ten-line program.
//
// We write a tiny disk-bound application in the VM's assembly, run it
// unmodified, then push it through SpecHint and run it again — watching the
// speculating thread turn I/O stalls into hints and the hints into overlapped
// prefetches.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spechint/internal/asm"
	"spechint/internal/core"
	"spechint/internal/fsim"
	"spechint/internal/spechint"
	"spechint/internal/workload"
)

const src = `
; Read ten files end to end and checksum their bytes.
.data
buf:    .space 8192
nfiles: .word 10
files:  .word f0, f1, f2, f3, f4, f5, f6, f7, f8, f9
f0: .asciz "data/part0"
f1: .asciz "data/part1"
f2: .asciz "data/part2"
f3: .asciz "data/part3"
f4: .asciz "data/part4"
f5: .asciz "data/part5"
f6: .asciz "data/part6"
f7: .asciz "data/part7"
f8: .asciz "data/part8"
f9: .asciz "data/part9"
.text
main:
    ldw  r20, nfiles
    movi r21, files
next:
    beq  r20, r0, done
    ldw  r1, (r21)
    syscall open
    mov  r10, r1
loop:
    mov  r1, r10
    movi r2, buf
    movi r3, 8192
    syscall read
    beq  r1, r0, eof
    movi r4, buf
    add  r5, r4, r1
sum:
    ldb  r6, (r4)
    add  r22, r22, r6
    addi r4, r4, 1
    blt  r4, r5, sum
    jmp  loop
eof:
    mov  r1, r10
    syscall close
    addi r21, r21, 8
    addi r20, r20, -1
    jmp  next
done:
    andi r1, r22, 0xffff
    syscall exit
`

func buildFS() *fsim.FS {
	fs := fsim.New(8192)
	workload.SetBenchLayout(fs)
	for i := 0; i < 10; i++ {
		data := make([]byte, 20000+i*1000)
		for j := range data {
			data[j] = byte(i + j)
		}
		fs.MustCreate(fmt.Sprintf("data/part%d", i), data)
	}
	return fs
}

func main() {
	prog := asm.MustAssemble(src)

	// 1. Run the original application: every read that misses stalls.
	orig, err := core.New(core.DefaultConfig(core.ModeNoHint), prog, buildFS())
	if err != nil {
		log.Fatal(err)
	}
	origStats, err := orig.Run()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Transform it with SpecHint: shadow code + COW checks + redirects.
	transformed, tstats, err := spechint.Transform(prog, spechint.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SpecHint: %d -> %d instructions, %d COW checks, %d hint sites\n",
		tstats.OrigInstrs, tstats.TotalInstrs, tstats.ChecksAdded, tstats.HintSites)

	// 3. Run the speculating build on an identical (fresh) file system.
	spec, err := core.New(core.DefaultConfig(core.ModeSpeculating), transformed, buildFS())
	if err != nil {
		log.Fatal(err)
	}
	specStats, err := spec.Run()
	if err != nil {
		log.Fatal(err)
	}

	if origStats.ExitCode != specStats.ExitCode {
		log.Fatalf("checksums diverged: %d vs %d", origStats.ExitCode, specStats.ExitCode)
	}

	fmt.Printf("\n%-22s %12s %12s\n", "", "original", "speculating")
	fmt.Printf("%-22s %11.3fs %11.3fs\n", "elapsed (testbed s)", origStats.Seconds(), specStats.Seconds())
	fmt.Printf("%-22s %12d %12d\n", "read calls", origStats.ReadCalls, specStats.ReadCalls)
	fmt.Printf("%-22s %12d %12d\n", "hinted reads", origStats.HintedReads, specStats.HintedReads)
	fmt.Printf("%-22s %12d %12d\n", "stall cycles", origStats.StallCycles(), specStats.StallCycles())
	fmt.Printf("%-22s %12s %12d\n", "speculation restarts", "-", specStats.Restarts)
	fmt.Printf("\nspeculative execution cut elapsed time by %.0f%%\n",
		100*(1-float64(specStats.Elapsed)/float64(origStats.Elapsed)))
	fmt.Printf("checksum: %d (identical in both runs — speculation is invisible)\n",
		origStats.ExitCode)
}
